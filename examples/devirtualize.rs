//! Devirtualization walkthrough: build a program with the fluent
//! builder API (no parser), analyze it, and report which virtual call
//! sites can be compiled into direct calls.
//!
//! ```text
//! cargo run --example devirtualize
//! ```

use clients::devirtualization;
use jir::ProgramBuilder;
use pta::{AllocSiteAbstraction, AnalysisConfig, ObjectSensitive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();

    // A small shape hierarchy.
    let shape = b.declare_abstract_class("Shape", Some(object))?;
    b.declare_abstract_method(shape, "area", 0)?;
    let circle = b.declare_class("Circle", Some(shape))?;
    let circle_area = b.declare_method(circle, "area", 0)?;
    {
        let mut body = b.body(circle_area);
        body.ret(None);
    }
    let square = b.declare_class("Square", Some(shape))?;
    let square_area = b.declare_method(square, "area", 0)?;
    {
        let mut body = b.body(square_area);
        body.ret(None);
    }

    // main: one receiver is monomorphic, one is polymorphic.
    let main_cls = b.declare_class("Main", Some(object))?;
    let main = b.declare_static_method(main_cls, "main", 0)?;
    b.set_entry(main);
    let (mono_site, poly_site) = {
        let mut body = b.body(main);
        let c = body.var("c");
        body.new_object(c, circle);
        let mono_site = body.virtual_call(None, c, "area", &[]);

        let s = body.var("s");
        body.new_object(s, circle);
        let s2 = body.var("s2");
        body.new_object(s2, square);
        body.assign(s, s2); // s may be Circle or Square
        let poly_site = body.virtual_call(None, s, "area", &[]);
        body.ret(None);
        (mono_site, poly_site)
    };
    let program = b.finish()?;

    let result = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction).run(&program)?;
    let devirt = devirtualization(&program, &result);

    println!("resolved virtual call sites: {}", devirt.resolved_sites);
    for &site in &devirt.mono_sites {
        let target = result.call_targets(site)[0];
        let m = program.method(target);
        println!(
            "  {site}: devirtualizable -> {}::{}",
            program.class(m.class()).name(),
            m.name()
        );
    }
    for &site in &devirt.poly_sites {
        let names: Vec<String> = result
            .call_targets(site)
            .iter()
            .map(|&t| {
                let m = program.method(t);
                format!("{}::{}", program.class(m.class()).name(), m.name())
            })
            .collect();
        println!("  {site}: polymorphic -> {{{}}}", names.join(", "));
    }

    assert!(devirt.mono_sites.contains(&mono_site));
    assert!(devirt.poly_sites.contains(&poly_site));
    Ok(())
}
