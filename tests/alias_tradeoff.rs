//! The tradeoff the paper designs for: Mahjong preserves precision for
//! *type-dependent* clients but deliberately gives up *may-alias*
//! precision (paper Section 1 — the allocation-site abstraction
//! "maximizes the precision for may-alias"; Mahjong targets "clients
//! whose precision depends on the types of pointed-to objects rather
//! than the pointed-to objects themselves").

use clients::alias::program_alias_stats;
use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AllocSiteAbstraction, AnalysisConfig, ObjectSensitive};

#[test]
fn mahjong_trades_alias_precision_for_speed_not_type_precision() {
    // Two StrBuilder-like containers with identical shapes: Mahjong
    // merges them (good for type clients) which makes their handles
    // alias (bad for alias clients).
    let p = jir::parse(
        "class Chars { }
         class Sb {
           field buf: Chars;
           method fill(this, c) { this.buf = c; return; }
         }
         class Main {
           entry static method main() {
             s1 = new Sb;
             s2 = new Sb;
             c1 = new Chars;
             c2 = new Chars;
             virt s1.fill(c1);
             virt s2.fill(c2);
             g1 = s1.buf;
             g2 = s2.buf;
             k1 = (Chars) g1;
             return;
           }
         }",
    )
    .unwrap();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    assert!(
        out.mom.classes().iter().any(|c| c.len() > 1),
        "the two Sb containers merge"
    );

    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let merged = AnalysisConfig::new(ObjectSensitive::new(2), out.mom)
        .run(&p)
        .unwrap();

    // Type-dependent clients: identical.
    let bm = ClientMetrics::compute(&p, &base);
    let mm = ClientMetrics::compute(&p, &merged);
    assert_eq!(bm.call_graph_edges, mm.call_graph_edges);
    assert_eq!(bm.poly_call_sites, mm.poly_call_sites);
    assert_eq!(bm.may_fail_casts, mm.may_fail_casts);

    // May-alias: strictly worse under Mahjong — s1/s2 now alias.
    let base_alias = program_alias_stats(&p, &base);
    let merged_alias = program_alias_stats(&p, &merged);
    assert!(
        merged_alias.aliased > base_alias.aliased,
        "merging introduces spurious aliases: {} vs {}",
        merged_alias.aliased,
        base_alias.aliased
    );
}

#[test]
fn alias_regression_is_substantial_on_workloads() {
    // On a realistic workload the alias-pair count visibly grows while
    // every type-dependent metric stays identical — quantifying the
    // "appropriate for classes of clients" thesis (the Ryder quote the
    // paper opens with).
    let w = workloads::dacapo::workload("luindex", 1);
    let p = &w.program;
    let pre = pta::pre_analysis(p).unwrap();
    let out = build_heap_abstraction(p, &pre, &MahjongConfig::default());

    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(p)
        .unwrap();
    let merged = AnalysisConfig::new(ObjectSensitive::new(2), out.mom)
        .run(p)
        .unwrap();

    let bm = ClientMetrics::compute(p, &base);
    let mm = ClientMetrics::compute(p, &merged);
    assert_eq!(bm.may_fail_casts, mm.may_fail_casts);
    assert_eq!(bm.poly_call_sites, mm.poly_call_sites);

    let base_alias = program_alias_stats(p, &base);
    let merged_alias = program_alias_stats(p, &merged);
    assert!(
        merged_alias.aliased >= base_alias.aliased,
        "alias pairs never shrink under merging"
    );
    assert!(
        merged_alias.aliased > base_alias.aliased,
        "and grow on container-heavy code ({} vs {})",
        merged_alias.aliased,
        base_alias.aliased
    );
}
