//! CLI behavior of the `repro` binary that the experiment tables don't
//! exercise: argument validation and error reporting.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// An unknown experiment name must fail loudly: non-zero exit, the bad
/// name echoed, and the full list of valid experiments so the caller
/// can fix the typo without reading the source.
#[test]
fn unknown_experiment_lists_valid_names_and_fails() {
    let out = repro()
        .args(["--exp", "tabel2"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "unknown experiment must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment `tabel2`"), "stderr: {stderr}");
    for name in [
        "motivation",
        "fig8",
        "fig9",
        "table1",
        "pre_analysis",
        "table2",
        "ablations",
        "alias",
        "all",
    ] {
        assert!(stderr.contains(name), "valid-list lacks `{name}`: {stderr}");
    }
}

/// Unknown flags keep failing fast too (guards the arg parser).
#[test]
fn unknown_flag_fails() {
    let out = repro().args(["--bogus"]).output().expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `--bogus`"), "stderr: {stderr}");
}

/// A known experiment on the smallest workload succeeds end to end.
#[test]
fn known_experiment_succeeds() {
    let out = repro()
        .args(["--exp", "fig9", "--scale", "1"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 9"), "stdout: {stdout}");
}
