//! CLI behavior of the `repro` binary that the experiment tables don't
//! exercise: argument validation, error reporting, and the shared-flag
//! contract with `mahjong_cli` (both binaries parse the shared options
//! through `bench::cli::CommonOpts` and render the same help section).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn mahjong_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mahjong_cli"))
}

/// Both binaries answer `--help` with their own usage followed by one
/// identical shared-options section — the single rendering
/// `bench::cli` owns. A drift between the two is a bug.
#[test]
fn help_renders_one_shared_section_in_both_binaries() {
    let extract_shared = |cmd: &mut Command| {
        let out = cmd.arg("--help").output().expect("binary runs");
        assert!(out.status.success(), "--help must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        let at = stdout
            .find("shared options:")
            .unwrap_or_else(|| panic!("no shared section in:\n{stdout}"));
        stdout[at..].to_owned()
    };
    let from_repro = extract_shared(&mut repro());
    let from_mahjong = extract_shared(&mut mahjong_cli());
    assert_eq!(from_repro, from_mahjong, "the shared help section drifted");
    for flag in ["--threads", "--metrics-json", "--trace", "--bench-json", "--force", "--heartbeat"]
    {
        assert!(from_repro.contains(flag), "shared section lacks {flag}");
    }
}

/// Both binaries reject unknown flags loudly, echoing the bad flag.
#[test]
fn unknown_flags_fail_in_both_binaries() {
    for mut cmd in [repro(), mahjong_cli()] {
        let out = cmd.arg("--bogus").output().expect("binary runs");
        assert!(!out.status.success(), "--bogus must exit non-zero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown argument `--bogus`"), "stderr: {stderr}");
    }
}

/// A shared flag with a malformed value fails identically through the
/// one parser (no silent fallback to a default).
#[test]
fn malformed_shared_flag_values_fail_in_both_binaries() {
    for mut cmd in [repro(), mahjong_cli()] {
        let out = cmd.args(["--threads", "lots"]).output().expect("binary runs");
        assert!(!out.status.success(), "--threads lots must exit non-zero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--threads needs a number"), "stderr: {stderr}");
    }
}

/// An unknown experiment name must fail loudly: non-zero exit, the bad
/// name echoed, and the full list of valid experiments so the caller
/// can fix the typo without reading the source.
#[test]
fn unknown_experiment_lists_valid_names_and_fails() {
    let out = repro()
        .args(["--exp", "tabel2"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "unknown experiment must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment `tabel2`"), "stderr: {stderr}");
    for name in [
        "motivation",
        "fig8",
        "fig9",
        "table1",
        "pre_analysis",
        "table2",
        "ablations",
        "alias",
        "all",
    ] {
        assert!(stderr.contains(name), "valid-list lacks `{name}`: {stderr}");
    }
}

/// Unknown flags keep failing fast too (guards the arg parser).
#[test]
fn unknown_flag_fails() {
    let out = repro().args(["--bogus"]).output().expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `--bogus`"), "stderr: {stderr}");
}

/// A known experiment on the smallest workload succeeds end to end.
#[test]
fn known_experiment_succeeds() {
    let out = repro()
        .args(["--exp", "fig9", "--scale", "1"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 9"), "stdout: {stdout}");
}

/// `--profile` writes a parseable solver-introspection profile to the
/// `--profile-json` path, with a run header and a non-empty timeline.
#[test]
fn profile_flag_writes_parseable_profile() {
    let dir = std::env::temp_dir().join(format!("repro_profile_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let profile = dir.join("PROFILE_pta.json");

    let out = repro()
        .args([
            "--exp",
            "fig9",
            "--scale",
            "1",
            "--profile",
            "--profile-json",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&profile).expect("profile written");
    let doc = obs::json::parse(&text).expect("profile parses");
    assert_eq!(doc.get("exp").unwrap().as_str(), Some("fig9"));
    assert!(doc.get("threads").unwrap().as_u64().is_some());
    let prof = doc.get("profile").expect("timeline export present");
    let records = prof.get("records").unwrap().as_array().unwrap();
    assert!(!records.is_empty(), "timeline has records");
    for key in ["pops", "level", "resolve_ns", "propagate_ns", "merge_ns"] {
        assert!(records[0].get(key).is_some(), "record lacks `{key}`");
    }
    assert!(prof.get("records_dropped").unwrap().as_u64().is_some());

    std::fs::remove_dir_all(&dir).ok();
}

/// The benchmark record honors `--bench-json`, refuses to clobber an
/// existing file without `--force`, and overwrites with it. The
/// refusal must happen *before* the experiment runs (exit is fast).
#[test]
fn bench_json_never_clobbers_without_force() {
    let dir = std::env::temp_dir().join(format!("repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("BENCH_pta.json");
    let bench_arg = bench.to_str().unwrap();

    // First write: target is fresh, no --force needed.
    let out = repro()
        .args(["--exp", "fig9", "--scale", "1", "--bench-json", bench_arg])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let first = std::fs::read_to_string(&bench).expect("bench record written");
    assert!(first.contains("\"exp\": \"fig9\""), "record: {first}");
    assert!(first.contains("\"par_shards\""), "record lacks parallel counters: {first}");

    // Second write without --force: refused, file untouched.
    let out = repro()
        .args(["--exp", "fig9", "--scale", "1", "--bench-json", bench_arg])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "clobber without --force must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to overwrite"), "stderr: {stderr}");
    assert_eq!(std::fs::read_to_string(&bench).unwrap(), first, "file was modified");

    // With --force the record is replaced.
    let out = repro()
        .args(["--exp", "fig9", "--scale", "1", "--bench-json", bench_arg, "--force"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

/// The full serving pipeline: `--save-snapshot` persists a warm-start
/// image, `--load-snapshot --serve-bench` answers the query mix from
/// it, the fingerprints printed on the two sides match, and the serve
/// record carries the schema `scripts/bench_table.py --check` pins.
#[test]
fn snapshot_save_load_serve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("repro_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("figure1-like.mjsn");
    let record = dir.join("BENCH_serve.json");

    let out = repro()
        .args(["--programs", "luindex", "--scale", "1", "--save-snapshot", snap.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let saved = String::from_utf8_lossy(&out.stdout).to_string();
    let fp_of = |text: &str| {
        text.lines()
            .find_map(|l| l.strip_prefix("repro: fingerprint "))
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no fingerprint line in:\n{text}"))
    };
    let saved_fp = fp_of(&saved);

    let out = repro()
        .args([
            "--load-snapshot",
            snap.to_str().unwrap(),
            "--serve-bench",
            "--serve-queries",
            "5000",
            "--serve-json",
            record.to_str().unwrap(),
        ])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let loaded = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(saved_fp, fp_of(&loaded), "save → load changed the result fingerprint");

    let text = std::fs::read_to_string(&record).expect("serve record written");
    let doc = obs::json::parse(&text).expect("serve record parses");
    assert_eq!(doc.get("exp").unwrap().as_str(), Some("serve"));
    assert_eq!(doc.get("source").unwrap().as_str(), Some("snapshot"));
    assert_eq!(doc.get("queries").unwrap().as_u64(), Some(5000));
    assert_eq!(doc.get("fingerprint").unwrap().as_str(), Some(saved_fp.as_str()));
    let classes = doc.get("classes").expect("classes present");
    for class in ["points_to", "may_alias", "call_targets", "cast_check", "not_found"] {
        let c = classes.get(class).unwrap_or_else(|| panic!("no class {class}"));
        assert!(c.get("count").unwrap().as_u64().is_some());
        assert!(c.get("p50_ns").unwrap().as_u64().is_some());
        assert!(c.get("p99_ns").unwrap().as_u64().is_some());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted snapshot is refused with a diagnostic — exit code 2 and
/// a checksum complaint, never a panic backtrace.
#[test]
fn corrupted_snapshot_is_refused_not_panicked() {
    let dir = std::env::temp_dir().join(format!("repro_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("lu.mjsn");

    let out = repro()
        .args(["--programs", "luindex", "--scale", "1", "--save-snapshot", snap.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Flip one byte in the middle of the file.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).unwrap();

    let out = repro()
        .args(["--load-snapshot", snap.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "corrupted snapshot must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load snapshot"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr shows a panic: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Serving options reject nonsense configurations up front.
#[test]
fn unknown_analysis_and_heap_names_fail() {
    for (flag, value, hint) in [
        ("--analysis", "4fun", "unknown --analysis"),
        ("--heap", "cloud", "unknown --heap"),
    ] {
        let out = repro()
            .args(["--programs", "luindex", "--scale", "1", "--serve-bench", flag, value])
            .output()
            .expect("repro runs");
        assert!(!out.status.success(), "{flag} {value} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(hint), "stderr: {stderr}");
    }
}
