//! The `corpus/` directory: shippable `.jir` sample files must parse,
//! analyze, and merge as their header comments promise.

use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AnalysisConfig, ContextInsensitive};

fn load(name: &str) -> jir::Program {
    let path = format!("{}/../../corpus/{name}.jir", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    jir::parse(&src).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn figure1_corpus_file_matches_the_paper() {
    let p = load("figure1");
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    assert_eq!(out.stats.objects, 6);
    assert_eq!(out.stats.merged_objects, 4);
    let r = AnalysisConfig::new(ContextInsensitive, out.mom).run(&p).unwrap();
    let m = ClientMetrics::compute(&p, &r);
    assert_eq!(m.poly_call_sites, 0);
    assert_eq!(m.may_fail_casts, 0);
}

#[test]
fn decorator_corpus_file_merges_nothing_unsound() {
    let p = load("decorator");
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    let r = AnalysisConfig::new(ContextInsensitive, out.mom).run(&p).unwrap();
    assert_eq!(
        ClientMetrics::compute(&p, &r).may_fail_casts,
        0,
        "(Buf) data stays safe after merging"
    );
}

#[test]
fn containers_corpus_file_splits_by_contents() {
    let p = load("containers");
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    // The two apple-holding cells merge; the brick-holding cell does not.
    let cell_sizes: Vec<usize> = out
        .mom
        .classes()
        .into_iter()
        .filter(|c| p.type_name(p.alloc(c[0]).ty()) == "Cell")
        .map(|c| c.len())
        .collect();
    assert_eq!(cell_sizes, vec![2, 1]);
    let r = AnalysisConfig::new(ContextInsensitive, out.mom).run(&p).unwrap();
    assert_eq!(ClientMetrics::compute(&p, &r).may_fail_casts, 0);
}
