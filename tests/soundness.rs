//! Soundness testing against a concrete interpreter: every points-to
//! fact observed in a real (bounded) execution must be covered by the
//! static analysis, for every heap abstraction and context sensitivity.
//!
//! The interpreter executes JIR directly — objects are tagged with
//! their allocation sites — and records `(variable, allocation site)`
//! observations at every assignment. A sound analysis must report, for
//! each observation, an abstract object whose representative site is
//! the abstraction's image of the concrete site.

use std::collections::HashMap;

use jir::{CallKind, CallTarget, MethodId, Program, Stmt, VarId};
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{
    AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, AnalysisResult, CallSiteSensitive,
    ContextInsensitive, HeapAbstraction, ObjectSensitive, TypeSensitive,
};

/// A concrete heap object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct ConcreteObj(usize);

#[derive(Default)]
struct Interp {
    /// Object store: per object, its allocation site and fields.
    alloc_of: Vec<jir::AllocId>,
    fields: Vec<HashMap<jir::FieldId, ConcreteObj>>,
    statics: HashMap<jir::FieldId, ConcreteObj>,
    /// Every (var, alloc-site) binding observed.
    observations: Vec<(VarId, jir::AllocId)>,
    steps: usize,
}

impl Interp {
    const MAX_STEPS: usize = 20_000;
    const MAX_DEPTH: usize = 48;

    fn new_object(&mut self, site: jir::AllocId) -> ConcreteObj {
        let id = ConcreteObj(self.alloc_of.len());
        self.alloc_of.push(site);
        self.fields.push(HashMap::new());
        id
    }

    fn run(&mut self, program: &Program) {
        self.call(program, program.entry(), None, &[], 0);
    }

    /// Executes a method body; returns the value of the last `return`.
    fn call(
        &mut self,
        program: &Program,
        method: MethodId,
        this: Option<ConcreteObj>,
        args: &[Option<ConcreteObj>],
        depth: usize,
    ) -> Option<ConcreteObj> {
        if depth > Self::MAX_DEPTH || self.steps > Self::MAX_STEPS {
            return None;
        }
        let m = program.method(method);
        let mut locals: HashMap<VarId, ConcreteObj> = HashMap::new();
        let observe = |obs: &mut Vec<(VarId, jir::AllocId)>,
                           locals: &mut HashMap<VarId, ConcreteObj>,
                           alloc_of: &[jir::AllocId],
                           v: VarId,
                           o: ConcreteObj| {
            locals.insert(v, o);
            obs.push((v, alloc_of[o.0]));
        };
        if let (Some(tv), Some(obj)) = (m.this(), this) {
            observe(&mut self.observations, &mut locals, &self.alloc_of, tv, obj);
        }
        for (i, &p) in m.params().iter().enumerate() {
            if let Some(Some(obj)) = args.get(i) {
                observe(&mut self.observations, &mut locals, &self.alloc_of, p, *obj);
            }
        }
        let mut ret = None;
        let body: Vec<Stmt> = m.body().to_vec();
        for stmt in body {
            self.steps += 1;
            if self.steps > Self::MAX_STEPS {
                break;
            }
            match stmt {
                Stmt::New { lhs, site } => {
                    let obj = self.new_object(site);
                    observe(&mut self.observations, &mut locals, &self.alloc_of, lhs, obj);
                }
                Stmt::Assign { lhs, rhs } => {
                    if let Some(&o) = locals.get(&rhs) {
                        observe(&mut self.observations, &mut locals, &self.alloc_of, lhs, o);
                    }
                }
                Stmt::Load { lhs, base, field } => {
                    if let Some(&b) = locals.get(&base) {
                        if let Some(&o) = self.fields[b.0].get(&field) {
                            observe(&mut self.observations, &mut locals, &self.alloc_of, lhs, o);
                        }
                    }
                }
                Stmt::Store { base, field, rhs } => {
                    if let (Some(&b), Some(&r)) = (locals.get(&base), locals.get(&rhs)) {
                        self.fields[b.0].insert(field, r);
                    }
                }
                Stmt::StaticLoad { lhs, field } => {
                    if let Some(&o) = self.statics.get(&field) {
                        observe(&mut self.observations, &mut locals, &self.alloc_of, lhs, o);
                    }
                }
                Stmt::StaticStore { field, rhs } => {
                    if let Some(&r) = locals.get(&rhs) {
                        self.statics.insert(field, r);
                    }
                }
                Stmt::Cast { lhs, rhs, site } => {
                    if let Some(&r) = locals.get(&rhs) {
                        let target = program.cast(site).target_ty();
                        let rt = program.alloc(self.alloc_of[r.0]).ty();
                        // A failing cast throws; model as "no value".
                        if program.is_subtype(rt, target) {
                            observe(&mut self.observations, &mut locals, &self.alloc_of, lhs, r);
                        }
                    }
                }
                Stmt::Call(site_id) => {
                    let cs = program.call_site(site_id).clone();
                    let arg_vals: Vec<Option<ConcreteObj>> =
                        cs.args().iter().map(|a| locals.get(a).copied()).collect();
                    let recv = cs.kind().receiver().and_then(|r| locals.get(&r).copied());
                    let target = match (cs.kind(), cs.target()) {
                        (CallKind::Virtual { .. }, CallTarget::Signature { name, arity }) => {
                            recv.and_then(|r| {
                                let ty = program.alloc(self.alloc_of[r.0]).ty();
                                program.dispatch(ty, name, *arity)
                            })
                        }
                        (_, CallTarget::Exact(t)) => Some(*t),
                        _ => None,
                    };
                    let returned = match target {
                        Some(t) if !program.method(t).is_abstract() => {
                            let needs_recv =
                                matches!(cs.kind(), CallKind::Virtual { .. } | CallKind::Special { .. });
                            // A virtual call on null (no receiver value)
                            // throws; skip it.
                            if needs_recv && recv.is_none() {
                                None
                            } else {
                                self.call(program, t, recv, &arg_vals, depth + 1)
                            }
                        }
                        _ => None,
                    };
                    if let (Some(res), Some(o)) = (cs.result(), returned) {
                        observe(&mut self.observations, &mut locals, &self.alloc_of, res, o);
                    }
                }
                Stmt::Return { value } => {
                    if let Some(v) = value {
                        if let Some(&o) = locals.get(&v) {
                            ret = Some(o);
                        }
                    }
                }
            }
        }
        ret
    }
}

/// Checks that every interpreter observation is covered by `result`
/// under the heap abstraction `repr` function.
fn assert_sound(
    label: &str,
    program: &Program,
    result: &AnalysisResult,
    observations: &[(VarId, jir::AllocId)],
    repr: impl Fn(jir::AllocId) -> jir::AllocId,
) {
    // Deduplicate observations — executions repeat the same bindings
    // constantly. Collapsed points-to queries are cached borrows on the
    // result side, so no per-variable cache is needed here.
    let unique: std::collections::HashSet<(VarId, jir::AllocId)> =
        observations.iter().copied().collect();
    for (var, site) in unique {
        let expected = repr(site);
        let pts = result.points_to_collapsed(var);
        let covered = pts.iter().any(|o| result.obj_alloc(o) == expected);
        assert!(
            covered,
            "{label}: unsound — execution bound {} = object from {} \
             but analysis reports {:?}",
            program.var(var).name(),
            program.alloc_label(site),
            pts.iter().map(|o| program.alloc_label(result.obj_alloc(o))).collect::<Vec<_>>()
        );
    }
}

fn soundness_suite(program: &Program) {
    let mut interp = Interp::default();
    interp.run(program);
    assert!(
        !interp.observations.is_empty(),
        "the program executes something"
    );

    // Allocation-site abstraction, several sensitivities.
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(program)
        .unwrap();
    assert_sound("ci", program, &r, &interp.observations, |a| a);
    let r = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .run(program)
        .unwrap();
    assert_sound("2cs", program, &r, &interp.observations, |a| a);
    let r = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(program)
        .unwrap();
    assert_sound("2obj", program, &r, &interp.observations, |a| a);
    let r = AnalysisConfig::new(TypeSensitive::new(2), AllocSiteAbstraction)
        .run(program)
        .unwrap();
    assert_sound("2type", program, &r, &interp.observations, |a| a);

    // Allocation-type abstraction.
    let at = AllocTypeAbstraction::new(program);
    let r = AnalysisConfig::new(ContextInsensitive, at.clone())
        .run(program)
        .unwrap();
    assert_sound("T-ci", program, &r, &interp.observations, |a| at.repr(a));

    // Mahjong.
    let pre = pta::pre_analysis(program).unwrap();
    let out = build_heap_abstraction(program, &pre, &MahjongConfig::default());
    let mom = out.mom;
    let r = AnalysisConfig::new(ObjectSensitive::new(2), mom.clone())
        .run(program)
        .unwrap();
    assert_sound("M-2obj", program, &r, &interp.observations, |a| mom.repr(a));
}

#[test]
fn figures_are_analyzed_soundly() {
    for p in [
        workloads::figures::figure1(),
        workloads::figures::figure3(),
        workloads::figures::figure6(),
        workloads::figures::figure7(),
    ] {
        soundness_suite(&p);
    }
}

#[test]
fn workloads_are_analyzed_soundly() {
    for name in ["luindex", "antlr", "checkstyle"] {
        let w = workloads::dacapo::workload(name, 1);
        soundness_suite(&w.program);
    }
}

#[test]
fn random_profiles_are_analyzed_soundly() {
    for seed in 0..8u64 {
        let profile = workloads::Profile::small(&format!("rand{seed}"), seed * 7 + 1);
        let w = workloads::generate(&profile);
        soundness_suite(&w.program);
    }
}
