//! Thread-count parity for parallel wave propagation.
//!
//! The parallel solver (`AnalysisConfig::threads > 1`) partitions each
//! wave's topological level into shards, propagates against a frozen
//! snapshot, and merges contributions in pointer-id order — so any
//! thread count must produce **bit-identical** analysis results. This
//! test pins that on luindex@2 for `threads ∈ {1, 2, 8}` with the same
//! canonical, interning-order-independent fingerprint used by
//! `crates/pta/tests/set_parity.rs`, and checks that the parallel
//! machinery actually engaged (`par_shards > 0`) when it was asked for.

use pta::{
    AllocSiteAbstraction, AnalysisConfig, AnalysisResult, CallSiteSensitive, ContextInsensitive,
    CtxElem,
};

/// A canonical, interning-order-independent description of one abstract
/// object (identical to the one in `set_parity.rs`).
fn canon_obj(r: &AnalysisResult, o: pta::ObjId) -> Vec<u64> {
    let mut out = vec![r.obj_alloc(o).index() as u64];
    for e in r.contexts().elems(r.obj_heap_context(o)) {
        out.push(match *e {
            CtxElem::CallSite(s) => 1 << 32 | s.index() as u64,
            CtxElem::Alloc(a) => 2 << 32 | a.index() as u64,
            CtxElem::Type(c) => 3 << 32 | c.index() as u64,
        });
    }
    out
}

/// Canonical fingerprint: FNV-mixed per-variable collapsed object sets
/// plus sorted call-graph edges, and order-invariant summary counts.
fn fingerprint(p: &jir::Program, r: &AnalysisResult) -> (u64, usize, usize, usize, usize) {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for v in (0..p.var_count()).map(jir::VarId::from_usize) {
        let mut objs: Vec<Vec<u64>> = r
            .points_to_collapsed(v)
            .iter()
            .map(|o| canon_obj(r, o))
            .collect();
        objs.sort_unstable();
        objs.dedup();
        mix(v.index() as u64 ^ 0xdead);
        for desc in objs {
            for w in desc {
                mix(w);
            }
            mix(0xfeed);
        }
    }
    let mut edges: Vec<(usize, usize)> = r
        .call_graph_edges()
        .map(|(s, m)| (s.index(), m.index()))
        .collect();
    edges.sort_unstable();
    for (s, m) in edges {
        mix(((s as u64) << 32) | m as u64);
    }
    (
        h,
        r.total_points_to_size() as usize,
        r.pointer_count(),
        r.object_count(),
        r.call_graph_edge_count(),
    )
}

const THREAD_COUNTS: &[usize] = &[1, 2, 8];

#[test]
fn luindex_fingerprints_identical_across_thread_counts() {
    let w = workloads::dacapo::workload("luindex", 2);
    let p = &w.program;

    for (analysis, parallel_must_engage) in [("ci", true), ("2cs", true)] {
        let mut golden: Option<(u64, usize, usize, usize, usize)> = None;
        for &threads in THREAD_COUNTS {
            let r = match analysis {
                "ci" => AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
                    .threads(threads)
                    .run(p)
                    .expect("fits budget"),
                "2cs" => AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
                    .threads(threads)
                    .run(p)
                    .expect("fits budget"),
                other => panic!("unknown analysis {other}"),
            };
            let fp = fingerprint(p, &r);
            match &golden {
                None => golden = Some(fp),
                Some(g) => assert_eq!(
                    fp, *g,
                    "luindex@2/{analysis}: threads={threads} diverged from threads=1"
                ),
            }
            if threads > 1 && parallel_must_engage {
                assert!(
                    r.stats().par_shards > 0,
                    "luindex@2/{analysis}: threads={threads} never fanned out \
                     (par_shards == 0) — parallel path did not engage"
                );
            } else {
                assert_eq!(
                    r.stats().par_shards,
                    0,
                    "luindex@2/{analysis}: sequential run reported parallel shards"
                );
            }
        }
    }
}
