//! Cross-validation: the automata-based type-consistency decision
//! (Algorithms 2–4) must agree with the direct bounded-path oracle
//! implementing Definition 2.1, on hand-built and random FPGs.

use mahjong::build::{dfa_for_root, RootAutomaton};
use mahjong::oracle::{exact_depth_for_acyclic, type_consistent_bounded};
use mahjong::{FieldPointsToGraph, FpgBuilder};
use obs::rng::SplitMix64;

/// Decides type-consistency through the automata path (the production
/// pipeline's decision procedure).
fn automata_consistent(fpg: &FieldPointsToGraph, a: jir::AllocId, b: jir::AllocId) -> bool {
    if fpg.node_type(mahjong::FpgNode::Alloc(a)) != fpg.node_type(mahjong::FpgNode::Alloc(b)) {
        return false;
    }
    let (da, _) = dfa_for_root(fpg, a, true);
    let (db, _) = dfa_for_root(fpg, b, true);
    match (da, db) {
        (RootAutomaton::Dfa(da), RootAutomaton::Dfa(db)) => da.equivalent(&db),
        _ => false,
    }
}

/// A random *acyclic* FPG: `n` nodes over `t` types and `f` fields,
/// edges only from lower-index to higher-index nodes (so the bounded
/// oracle is exact).
fn random_acyclic_fpg(
    rng: &mut SplitMix64,
    n: usize,
    t: usize,
    f: usize,
) -> (FieldPointsToGraph, Vec<jir::AllocId>) {
    let mut b = FpgBuilder::new();
    let tys: Vec<_> = (0..t).map(|i| b.ty(&format!("T{i}"))).collect();
    let fields: Vec<_> = (0..f).map(|i| b.field(&format!("f{i}"))).collect();
    let allocs: Vec<_> = (0..n).map(|_| b.alloc(tys[rng.below_usize(t)])).collect();
    let edge_count = rng.below_usize(n * 2);
    for _ in 0..edge_count {
        let from = rng.below_usize(n);
        let field = rng.below_usize(f);
        let to = rng.below_usize(n);
        // Orient edges forward to keep the graph acyclic.
        let (lo, hi) = (from.min(to), from.max(to));
        if lo != hi {
            b.edge(allocs[lo], fields[field], allocs[hi]);
        }
    }
    (b.finish(), allocs)
}

const CASES: usize = 128;

/// On acyclic graphs the bounded oracle is exact; the automata
/// decision must agree on every same-type pair.
#[test]
fn automata_agree_with_oracle_on_acyclic_fpgs() {
    let mut rng = SplitMix64::new(0x0000_AC1E_0001);
    for _ in 0..CASES {
        let (fpg, allocs) = random_acyclic_fpg(&mut rng, 8, 3, 3);
        let depth = exact_depth_for_acyclic(&fpg);
        for i in 0..allocs.len() {
            for j in (i + 1)..allocs.len() {
                let (a, b) = (allocs[i], allocs[j]);
                let fast = automata_consistent(&fpg, a, b);
                let slow = type_consistent_bounded(&fpg, a, b, depth, true);
                assert_eq!(fast, slow, "disagreement on ({a:?}, {b:?})");
            }
        }
    }
}

/// Type-consistency is an equivalence relation (the paper proves ≡
/// reflexive, symmetric, transitive): check symmetry and transitivity
/// on random graphs via the automata path.
#[test]
fn type_consistency_is_an_equivalence_relation() {
    let mut rng = SplitMix64::new(0x0000_AC1E_0002);
    for _ in 0..CASES {
        let (fpg, allocs) = random_acyclic_fpg(&mut rng, 7, 2, 2);
        // Reflexivity.
        for &a in &allocs {
            let (auto, _) = dfa_for_root(&fpg, a, true);
            if let RootAutomaton::Dfa(d) = auto {
                assert!(d.equivalent(&d.clone()));
            }
        }
        // Symmetry and transitivity.
        for i in 0..allocs.len() {
            for j in 0..allocs.len() {
                let ij = automata_consistent(&fpg, allocs[i], allocs[j]);
                let ji = automata_consistent(&fpg, allocs[j], allocs[i]);
                assert_eq!(ij, ji, "symmetry");
                if !ij {
                    continue;
                }
                for k in 0..allocs.len() {
                    let jk = automata_consistent(&fpg, allocs[j], allocs[k]);
                    if jk {
                        assert!(
                            automata_consistent(&fpg, allocs[i], allocs[k]),
                            "transitivity"
                        );
                    }
                }
            }
        }
    }
}

/// Merging respects the TYPEOF guard: objects in one equivalence class
/// always share a type.
#[test]
fn merged_classes_are_type_homogeneous() {
    let mut rng = SplitMix64::new(0x0000_AC1E_0003);
    for _ in 0..CASES {
        let (fpg, _allocs) = random_acyclic_fpg(&mut rng, 10, 3, 3);
        let out = mahjong::merge_equivalent_objects(&fpg, &mahjong::MahjongConfig::default());
        for class in out.mom.classes() {
            let first = fpg.node_type(mahjong::FpgNode::Alloc(class[0]));
            for &m in &class[1..] {
                assert_eq!(fpg.node_type(mahjong::FpgNode::Alloc(m)), first);
            }
        }
    }
}

/// The merge driver is idempotent: re-running Mahjong on a graph whose
/// objects were already merged (one representative per class) merges
/// nothing further... checked indirectly: every pair of distinct
/// representatives is NOT type-consistent.
#[test]
fn representatives_are_pairwise_inconsistent() {
    let mut rng = SplitMix64::new(0x0000_AC1E_0004);
    for _ in 0..CASES {
        let (fpg, _allocs) = random_acyclic_fpg(&mut rng, 8, 2, 2);
        let out = mahjong::merge_equivalent_objects(&fpg, &mahjong::MahjongConfig::default());
        let reps: Vec<jir::AllocId> = out
            .mom
            .classes()
            .iter()
            .map(|c| out.mom.repr(c[0]))
            .collect();
        for i in 0..reps.len() {
            for j in (i + 1)..reps.len() {
                assert!(
                    !automata_consistent(&fpg, reps[i], reps[j]),
                    "representatives {:?} and {:?} should not merge",
                    reps[i],
                    reps[j]
                );
            }
        }
    }
}

use pta::HeapAbstraction as _;

/// The cyclic cases the bounded oracle cannot settle exactly get
/// explicit automata-level tests.
#[test]
fn cyclic_structures_merge_correctly() {
    let mut b = FpgBuilder::new();
    let node = b.ty("Node");
    let leaf = b.ty("Leaf");
    let next = b.field("next");
    let item = b.field("item");
    // Ring of 3 nodes, each holding a leaf.
    let n1 = b.alloc(node);
    let n2 = b.alloc(node);
    let n3 = b.alloc(node);
    let l1 = b.alloc(leaf);
    b.edge(n1, next, n2);
    b.edge(n2, next, n3);
    b.edge(n3, next, n1);
    b.edge(n1, item, l1);
    b.edge(n2, item, l1);
    b.edge(n3, item, l1);
    // A self-loop node with a leaf.
    let n4 = b.alloc(node);
    b.edge(n4, next, n4);
    b.edge(n4, item, l1);
    let fpg = b.finish();

    assert!(automata_consistent(&fpg, n1, n2));
    assert!(automata_consistent(&fpg, n1, n4), "ring ≡ self-loop");
    // Oracle agreement at increasing depths (cannot be exact, but must
    // never contradict at any bounded depth).
    for depth in 1..12 {
        assert!(type_consistent_bounded(&fpg, n1, n4, depth, true), "depth {depth}");
    }
}
