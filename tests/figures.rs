//! Integration tests reproducing the paper's worked examples exactly:
//! Figures 1, 3, 6, and 7 and Examples 2.1–2.6, 3.1, 3.2.

use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig, Representative};
use pta::{
    AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, CallSiteSensitive, ContextInsensitive,
    TypeSensitive,
};

fn var_named(p: &jir::Program, name: &str) -> jir::VarId {
    (0..p.var_count())
        .map(jir::VarId::from_usize)
        .find(|&v| p.var(v).name() == name)
        .unwrap_or_else(|| panic!("no var {name}"))
}

/// Example 2.1: under the allocation-site abstraction, `a.foo()` is a
/// mono-call and `(C) a` is safe; the allocation-type abstraction
/// breaks both.
#[test]
fn figure1_alloc_site_vs_alloc_type() {
    let p = workloads::figures::figure1();

    let site = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let m = ClientMetrics::compute(&p, &site);
    assert_eq!(m.poly_call_sites, 0, "a.foo() devirtualizes");
    assert_eq!(m.may_fail_casts, 0, "(C) a is safe");

    let ty = AnalysisConfig::new(ContextInsensitive, AllocTypeAbstraction::new(&p))
        .run(&p)
        .unwrap();
    let m = ClientMetrics::compute(&p, &ty);
    assert_eq!(m.poly_call_sites, 1, "T-: a.foo() becomes a poly call");
    assert_eq!(m.may_fail_casts, 1, "T-: (C) a is no longer safe");
}

/// Example 2.3: Mahjong merges exactly {o2, o3} (A objects whose `f`
/// holds a C) and {o5, o6} (the two C objects); o1 stays separate.
#[test]
fn figure1_mahjong_merges_o2_o3_only() {
    let p = workloads::figures::figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    assert_eq!(out.stats.objects, 6);
    assert_eq!(out.stats.merged_objects, 4, "6 sites -> 4 objects");

    let multi: Vec<Vec<String>> = out
        .mom
        .classes()
        .into_iter()
        .filter(|c| c.len() > 1)
        .map(|c| c.iter().map(|&a| p.type_name(p.alloc(a).ty())).collect())
        .collect();
    assert_eq!(multi.len(), 2);
    assert!(multi.contains(&vec!["A".to_owned(), "A".to_owned()]));
    assert!(multi.contains(&vec!["C".to_owned(), "C".to_owned()]));
}

/// Example 2.3 (continued): the Mahjong-based analysis preserves both
/// client results on Figure 1.
#[test]
fn figure1_mahjong_preserves_precision() {
    let p = workloads::figures::figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    let r = AnalysisConfig::new(ContextInsensitive, out.mom).run(&p).unwrap();
    let m = ClientMetrics::compute(&p, &r);
    assert_eq!(m.poly_call_sites, 0);
    assert_eq!(m.may_fail_casts, 0);

    // And `a` now points to the merged C object — still exactly type C.
    let a = var_named(&p, "a");
    let pts = r.points_to_collapsed(a);
    assert!(!pts.is_empty());
    for o in pts {
        assert_eq!(p.type_name(r.obj_type(o)), "C");
    }
}

/// Figure 3 / Example 2.4: without Condition 2, Mahjong merges `ti` and
/// `tj`, and M-1cs loses the precision 1cs had; with Condition 2 the
/// merge is rejected and precision is preserved.
#[test]
fn figure3_condition2_is_necessary() {
    let p = workloads::figures::figure3();
    let pre = pta::pre_analysis(&p).unwrap();

    // Baseline: 1cs proves both casts safe.
    let base = AnalysisConfig::new(CallSiteSensitive::new(1), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    assert_eq!(ClientMetrics::compute(&p, &base).may_fail_casts, 0);

    // With Condition 2 (default): ti/tj not merged, no precision loss.
    let strict = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), strict.mom.clone())
        .run(&p)
        .unwrap();
    assert_eq!(ClientMetrics::compute(&p, &r).may_fail_casts, 0);

    // Ablation: drop Condition 2 — ti/tj merge and the casts regress.
    let loose_cfg = MahjongConfig {
        enforce_condition2: false,
        ..MahjongConfig::default()
    };
    let loose = build_heap_abstraction(&p, &pre, &loose_cfg);
    assert!(
        loose.stats.merged_objects < strict.stats.merged_objects,
        "dropping Condition 2 merges more"
    );
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), loose.mom)
        .run(&p)
        .unwrap();
    assert!(
        ClientMetrics::compute(&p, &r).may_fail_casts > 0,
        "the Figure 3 merge leaks Y into ti.f"
    );
}

/// Figure 6 / Example 3.1: the null-field problem. The pre-analysis
/// cannot see that `tj.f` is null under a precise analysis, so Mahjong
/// merges `ti`/`tj` and M-1cs flags a cast that 1cs proves safe — the
/// rare, accepted precision loss.
#[test]
fn figure6_null_field_problem() {
    let p = workloads::figures::figure6();
    let pre = pta::pre_analysis(&p).unwrap();

    let base = AnalysisConfig::new(CallSiteSensitive::new(1), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    assert_eq!(
        ClientMetrics::compute(&p, &base).may_fail_casts,
        0,
        "1cs sees tj.f as null, so (Y) tj.f never executes on a bad object"
    );

    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), out.mom)
        .run(&p)
        .unwrap();
    assert_eq!(
        ClientMetrics::compute(&p, &r).may_fail_casts,
        1,
        "M-1cs merges ti/tj and (Y) gj now sees the X object"
    );
}

/// Figure 7 / Example 3.2: under type-sensitivity the representative
/// choice matters. With the largest representative, M-2type separates
/// allocation sites 1 and 2 (contexts U vs T) and proves both casts
/// safe — slightly *better* than 2type; with the smallest, sites 1–3
/// share context T — no better than 2type.
#[test]
fn figure7_representative_choice() {
    let p = workloads::figures::figure7();
    let pre = pta::pre_analysis(&p).unwrap();

    // Plain 2type: sites 1 and 2 are both in class T — contexts merge,
    // payloads P1/P2 mix, both casts may fail.
    let base = AnalysisConfig::new(TypeSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let base_fails = ClientMetrics::compute(&p, &base).may_fail_casts;
    assert_eq!(base_fails, 2, "2type conflates sites 1 and 2");

    // M-2type with the largest representative: {site1, site3} is
    // represented by site 3 (class U) — sites 1 and 2 now have distinct
    // type contexts, and both casts are proven safe.
    let cfg = MahjongConfig {
        representative: Representative::Largest,
        ..MahjongConfig::default()
    };
    let out = build_heap_abstraction(&p, &pre, &cfg);
    assert!(
        out.mom.classes().iter().any(|c| c.len() == 2),
        "sites 1 and 3 are type-consistent"
    );
    let r = AnalysisConfig::new(TypeSensitive::new(2), out.mom)
        .run(&p)
        .unwrap();
    let largest_fails = ClientMetrics::compute(&p, &r).may_fail_casts;
    assert!(
        largest_fails < base_fails,
        "M-2type (largest repr) is slightly better than 2type: {largest_fails} < {base_fails}"
    );

    // M-2type with the smallest representative: all of sites 1–3 get
    // context T — no better than 2type.
    let cfg = MahjongConfig::default();
    let out = build_heap_abstraction(&p, &pre, &cfg);
    let r = AnalysisConfig::new(TypeSensitive::new(2), out.mom)
        .run(&p)
        .unwrap();
    let smallest_fails = ClientMetrics::compute(&p, &r).may_fail_casts;
    assert!(smallest_fails >= base_fails, "smallest repr is coarser");
}

/// Figure 2 / Examples 2.2–2.6 are covered at the automata level in
/// `mahjong::build`; this re-checks them through the public pipeline by
/// building the same shapes as a program.
#[test]
fn figure2_shapes_merge_through_the_pipeline() {
    let p = jir::parse(
        "class T { field tf: U; field tg: X; }
         class U { field uh: Y; }
         class X { field xk: Y; }
         class Y { }
         class Main {
           entry static method main() {
             o1 = new T; o3 = new U; o5 = new X; o7 = new Y; o9 = new Y; o11 = new Y;
             o1.tf = o3; o1.tg = o5; o3.uh = o7; o3.uh = o9; o5.xk = o11;
             o2 = new T; o4 = new U; o6 = new X; o8 = new Y;
             o2.tf = o4; o2.tg = o6; o4.uh = o8; o6.xk = o8;
             return;
           }
         }",
    )
    .unwrap();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    // o1 ≡ o2 (the paper's Example 2.6), plus the U, X, Y groups merge.
    let t_class: Vec<_> = out
        .mom
        .classes()
        .into_iter()
        .filter(|c| c.len() > 1 && p.type_name(p.alloc(c[0]).ty()) == "T")
        .collect();
    assert_eq!(t_class.len(), 1, "the two T roots are type-consistent");
    assert_eq!(t_class[0].len(), 2);
}
