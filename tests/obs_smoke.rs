//! End-to-end smoke tests for the `obs` telemetry layer: deterministic
//! counters on the figure-1 corpus program, span-nesting invariants,
//! and both export formats written to disk and re-parsed.
//!
//! The `obs` registry is process-global, so every test here takes the
//! same lock and resets the registry before making assertions.

use std::sync::Mutex;

use mahjong::{build_heap_abstraction, MahjongConfig};
use obs::json;
use pta::Budget;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(true);
    guard
}

fn counter(name: &str) -> u64 {
    obs::counter(name).get()
}

fn load_figure1() -> jir::Program {
    let path = format!("{}/../../corpus/figure1.jir", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    jir::parse(&src).expect("figure1 parses")
}

/// The full pre-analysis pipeline on the paper's Figure 1 example
/// leaves exact, reproducible numbers in the registry.
#[test]
fn figure1_counters_are_deterministic() {
    let _guard = lock();
    let p = load_figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());

    assert_eq!(counter("mahjong.objects"), 6);
    assert_eq!(counter("mahjong.merged_objects"), 4);
    assert_eq!(counter("mahjong.hk_runs"), 0, "fast path never runs Hopcroft–Karp");
    assert_eq!(counter("mahjong.equivalence_checks"), 0);
    assert_eq!(counter("mahjong.dfa_built"), out.stats.dfa_built as u64);
    assert_eq!(counter("mahjong.sig_buckets"), out.stats.sig_buckets as u64);
    assert!(counter("mahjong.canon_ns") > 0, "canonicalization time was recorded");
    // Debug builds re-verify each signature-directed merge with one HK
    // query (the collision safety net); release builds run none.
    if cfg!(debug_assertions) {
        assert_eq!(
            counter("automata.hk_queries"),
            (out.stats.objects - out.stats.merged_objects) as u64,
            "one debug-only HK re-check per merge"
        );
    } else {
        assert_eq!(counter("automata.hk_queries"), 0);
    }
    // Sink suppression can drive `pta.worklist_pops` to zero on tiny
    // programs (every delta lands before its consumers register, so
    // the fixpoint resolves entirely through registration replays) —
    // assert on the constraint graph instead.
    assert!(counter("pta.copy_edges") > 0);

    // Rerunning the identical pipeline doubles the monotonic counters.
    let pre2 = pta::pre_analysis(&p).unwrap();
    let _ = build_heap_abstraction(&p, &pre2, &MahjongConfig::default());
    assert_eq!(counter("mahjong.objects"), 12);
    assert_eq!(counter("mahjong.hk_runs"), 0);
    assert_eq!(counter("mahjong.sig_buckets"), 2 * out.stats.sig_buckets as u64);
}

/// Every pipeline stage leaves its named phase in the span log.
#[test]
fn pipeline_phases_are_recorded() {
    let _guard = lock();
    let p = load_figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let _ = build_heap_abstraction(&p, &pre, &MahjongConfig::default());

    let r = obs::registry();
    for phase in [
        "pre_analysis",
        "solver.init",
        "solver.fixpoint",
        "solver.finalize",
        "mahjong.fpg_build",
        "mahjong.automata_build",
        "mahjong.equivalence_check",
    ] {
        let totals = r.phase_totals();
        let found = totals.iter().find(|t| t.name == phase);
        assert!(found.is_some(), "phase `{phase}` missing from span log");
        assert!(found.unwrap().count >= 1);
    }
}

/// Nested spans record increasing depths and parent-contained
/// intervals.
#[test]
fn spans_nest() {
    let _guard = lock();
    {
        let _a = obs::span("smoke.outer");
        let _b = obs::span("smoke.inner");
        let _c = obs::span("smoke.innermost");
    }
    let spans = obs::registry().spans();
    let find = |name: &str| spans.iter().find(|s| s.name == name).expect(name).clone();
    let outer = find("smoke.outer");
    let inner = find("smoke.inner");
    let innermost = find("smoke.innermost");
    assert_eq!(inner.depth, outer.depth + 1);
    assert_eq!(innermost.depth, inner.depth + 1);
    // Drop order closes children first, so each child interval sits
    // inside its parent's (1 µs slack for clock granularity).
    assert!(inner.start_us >= outer.start_us);
    assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    assert!(innermost.start_us >= inner.start_us);
    assert!(innermost.start_us + innermost.dur_us <= inner.start_us + inner.dur_us + 1);
}

/// The Chrome trace export is valid JSON made of complete (`"X"`)
/// events, per-track `thread_name` metadata (`"M"`) events, and exactly
/// one instant counters event.
#[test]
fn chrome_trace_is_valid() {
    let _guard = lock();
    let p = load_figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let _ = build_heap_abstraction(&p, &pre, &MahjongConfig::default());

    let doc = json::parse(&obs::export_chrome_trace()).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(events.len() > 1);
    let mut instants = 0;
    let mut metas = 0;
    for ev in events {
        match ev.get("ph").unwrap().as_str().unwrap() {
            "X" => {
                assert!(ev.get("name").unwrap().as_str().is_some());
                assert!(ev.get("ts").unwrap().as_u64().is_some());
                assert!(ev.get("dur").unwrap().as_u64().is_some());
                let args = ev.get("args").unwrap();
                // Span events carry a depth; shard events carry a wave.
                assert!(args.get("depth").is_some() || args.get("wave").is_some());
            }
            "i" => instants += 1,
            "M" => {
                assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name"));
                metas += 1;
            }
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    assert_eq!(instants, 1, "exactly one counters metadata event");
    assert!(metas >= 1, "at least the main thread is named");
}

/// The solver timeline is deterministic: its pop/object/word totals
/// agree with the registry counters, and an identical rerun reproduces
/// them exactly (timings differ; work does not).
#[test]
fn timeline_contents_are_deterministic_on_figure1() {
    let _guard = lock();
    let totals = |p: &jir::Program| {
        let pre = pta::pre_analysis(p).unwrap();
        let _ = build_heap_abstraction(p, &pre, &MahjongConfig::default());
        let records = obs::timeline().records();
        assert!(!records.is_empty(), "solver runs leave timeline records");
        let pops: u64 = records.iter().map(|r| u64::from(r.pops)).sum();
        let objects: u64 = records.iter().map(|r| r.objects).sum();
        let words: u64 = records.iter().map(|r| r.words).sum();
        assert_eq!(pops, counter("pta.worklist_pops"), "timeline pops match the counter");
        (pops, objects, words)
    };
    let p = load_figure1();
    let first = totals(&p);
    obs::reset();
    obs::set_enabled(true);
    let second = totals(&p);
    assert_eq!(first, second, "rerun reproduces the timeline totals");
}

/// The timeline ring keeps the newest records once capacity is
/// exceeded and counts what it dropped.
#[test]
fn timeline_ring_wraps_at_capacity() {
    use obs::timeline::{Timeline, WaveRecord};
    let _guard = lock();
    let tl = Timeline::new(4, 2);
    for wave in 0..10u32 {
        tl.record_wave(WaveRecord { wave, pops: wave, ..WaveRecord::default() });
    }
    let records = tl.records();
    assert_eq!(records.len(), 4);
    assert_eq!(tl.records_dropped(), 6);
    // Oldest-first order over the surviving (newest) records.
    assert_eq!(records.iter().map(|r| r.wave).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
}

/// `export_json` round-trips through the parser and mirrors the
/// in-memory ring.
#[test]
fn timeline_export_roundtrips() {
    let _guard = lock();
    let p = load_figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let _ = build_heap_abstraction(&p, &pre, &MahjongConfig::default());

    let tl = obs::timeline();
    let doc = json::parse(&tl.export_json()).expect("timeline export parses");
    let records = doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), tl.records().len());
    for rec in records {
        // Sentinel levels export as small negatives, real levels as >= 0.
        let level = rec.get("level").unwrap().as_f64().unwrap();
        assert!(level >= -4.0, "level {level} in range");
        for key in ["pops", "resolve_ns", "propagate_ns", "merge_ns", "shards"] {
            assert!(rec.get(key).is_some(), "record lacks `{key}`");
        }
    }
    assert!(doc.get("records_dropped").unwrap().as_u64().is_some());
    assert!(doc.get("top_pointers").unwrap().as_array().is_some());
}

/// Quantile estimation handles the degenerate inputs: an empty
/// snapshot reports zero everywhere, and the extreme quantiles pin to
/// the observed min/max buckets.
#[test]
fn histogram_quantile_edge_cases() {
    let _guard = lock();
    let r = obs::registry();
    let empty = r.histogram("smoke.empty").snapshot();
    assert_eq!(empty.count, 0);
    assert_eq!(empty.quantile(0.0), 0);
    assert_eq!(empty.quantile(0.5), 0);
    assert_eq!(empty.quantile(1.0), 0);
    assert_eq!(empty.mean(), 0.0);

    let h = r.histogram("smoke.quantiles");
    for v in [3u64, 100, 9000] {
        h.record(v);
    }
    let s = h.snapshot();
    // q=0.0 clamps to the first observation's bucket; q=1.0 is exact.
    assert_eq!(s.quantile(0.0), 3, "inclusive upper bound of 3's bucket [2,4)");
    assert_eq!(s.quantile(1.0), s.max);
    assert_eq!(s.max, 9000);
    assert!(s.quantile(0.5) >= s.quantile(0.0));
    assert!(s.quantile(1.0) >= s.quantile(0.5));
}

/// The full pipeline — pre-analysis, Mahjong, main analysis — on a
/// generated workload writes both export formats to disk; both re-parse
/// and carry per-phase wall-clock for every pipeline stage.
#[test]
fn full_pipeline_exports_roundtrip() {
    let _guard = lock();
    let prepared = bench::prepare("luindex", 1, &MahjongConfig::default());
    let outcome = bench::run_configuration(
        &prepared.program,
        bench::Sensitivity::Cs(1),
        bench::HeapKind::Mahjong,
        &prepared.mahjong.mom,
        Budget::seconds(120),
        1,
    );
    assert!(outcome.seconds.is_some(), "scale-1 run fits its budget");

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let jsonl_path = dir.join(format!("obs_smoke_{pid}.jsonl"));
    let trace_path = dir.join(format!("obs_smoke_{pid}.trace.json"));
    std::fs::write(&jsonl_path, obs::export_jsonl()).unwrap();
    std::fs::write(&trace_path, obs::export_chrome_trace()).unwrap();

    // JSON-Lines: every line parses; the pipeline stages all report
    // wall-clock.
    let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
    let mut phases: Vec<(String, u64)> = Vec::new();
    for line in jsonl.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e:?}"));
        if v.get("type").unwrap().as_str() == Some("phase") {
            phases.push((
                v.get("name").unwrap().as_str().unwrap().to_owned(),
                v.get("total_us").unwrap().as_u64().unwrap(),
            ));
        }
    }
    for phase in [
        "pre_analysis",
        "mahjong.automata_build",
        "mahjong.equivalence_check",
        "solver.fixpoint",
        "main_analysis",
    ] {
        assert!(
            phases.iter().any(|(name, _)| name == phase),
            "JSONL lacks phase `{phase}`"
        );
    }

    // Chrome trace: parses, and the same stages appear as X events.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let doc = json::parse(&trace).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    for phase in ["pre_analysis", "mahjong.equivalence_check", "main_analysis"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").unwrap().as_str() == Some(phase)),
            "trace lacks span `{phase}`"
        );
    }

    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&trace_path).ok();
}

/// `OBS_DISABLE`-style runtime disabling turns recording into no-ops
/// end to end.
#[test]
fn disabled_pipeline_records_nothing() {
    let _guard = lock();
    obs::set_enabled(false);
    let p = load_figure1();
    let pre = pta::pre_analysis(&p).unwrap();
    let _ = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    assert_eq!(counter("mahjong.objects"), 0);
    assert_eq!(counter("pta.worklist_pops"), 0);
    assert!(obs::registry().spans().is_empty());
    obs::set_enabled(true);
}
