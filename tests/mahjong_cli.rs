//! Smoke tests for the `mahjong_cli` binary.

use std::io::Write as _;
use std::process::Command;

const FIGURE1: &str = "
class A {
  field f: A;
  method foo(this) { return; }
}
class B extends A { method foo(this) { return; } }
class C extends A {
  method foo(this) { return; }
  entry static method main() {
    x = new A; y = new A; z = new A;
    b = new B; c5 = new C; c6 = new C;
    x.f = b; y.f = c5; z.f = c6;
    a = z.f;
    virt a.foo();
    c = (C) a;
    return;
  }
}";

fn write_program(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mahjong-cli-test-{name}.jir"));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(FIGURE1.as_bytes()).expect("write");
    path
}

#[test]
fn cli_reports_merged_classes() {
    let path = write_program("basic");
    let out = Command::new(env!("CARGO_BIN_EXE_mahjong_cli"))
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6 reachable objects -> 4 abstract objects"), "{stdout}");
    // Two merged classes reported, joined with ≡.
    assert_eq!(stdout.matches('≡').count(), 2, "{stdout}");
}

#[test]
fn cli_flags_change_the_outcome() {
    let path = write_program("flags");
    let strict = Command::new(env!("CARGO_BIN_EXE_mahjong_cli"))
        .arg(&path)
        .output()
        .expect("binary runs");
    let loose = Command::new(env!("CARGO_BIN_EXE_mahjong_cli"))
        .arg(&path)
        .arg("--no-null")
        .arg("--threads")
        .arg("2")
        .output()
        .expect("binary runs");
    assert!(strict.status.success());
    assert!(loose.status.success());
    // Without null modeling the A objects' payload-less fields look
    // alike earlier; on Figure 1 the result happens to coincide — the
    // flag must at least parse and run.
    assert!(String::from_utf8_lossy(&loose.stdout).contains("abstract objects"));
}

#[test]
fn cli_rejects_bad_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_mahjong_cli"))
        .arg("/nonexistent/program.jir")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
