//! Analysis behaviour on the curated sample patterns
//! (`workloads::samples`): each pattern has a documented expected
//! outcome per client and per heap abstraction.

use clients::{devirtualization, ClientMetrics};
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive, ObjectSensitive};

#[test]
fn linked_list_spine_merges_entirely() {
    let p = workloads::samples::linked_list();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    // Three Items merge (no fields); the three Nodes do NOT all merge:
    // n3 (self-loop tail) differs from n1/n2 only in structure, not
    // type — all nodes reach {Node, Item} shapes, so they are
    // type-consistent and merge into one class.
    let node_classes: Vec<usize> = out
        .mom
        .classes()
        .into_iter()
        .filter(|c| p.type_name(p.alloc(c[0]).ty()) == "Node")
        .map(|c| c.len())
        .collect();
    assert_eq!(node_classes, vec![3], "the whole spine merges");
    // And the (Item) cast stays safe under M-ci.
    let r = AnalysisConfig::new(ContextInsensitive, out.mom).run(&p).unwrap();
    assert_eq!(ClientMetrics::compute(&p, &r).may_fail_casts, 0);
}

#[test]
fn visitor_double_dispatch_is_fully_devirtualizable() {
    let p = workloads::samples::visitor();
    let r = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let d = devirtualization(&p, &r);
    // accept() sites are mono (distinct receivers); visitCircle /
    // visitSquare resolve to the single visitor class.
    assert_eq!(d.poly_sites.len(), 0, "every site devirtualizes");
    assert_eq!(d.mono_sites.len(), 4);
}

#[test]
fn observer_notify_site_is_genuinely_polymorphic() {
    let p = workloads::samples::observer();
    // The single update() call site dispatches to Logger and Mailer —
    // a genuine poly site under every analysis. (Context-sensitivity
    // separates the *per-context* targets, but devirtualization is a
    // per-site client, collapsed over contexts.)
    for result in [
        AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(&p)
            .unwrap(),
        AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .run(&p)
            .unwrap(),
    ] {
        let d = devirtualization(&p, &result);
        assert_eq!(d.poly_sites.len(), 1, "update() is a true poly site");
    }
}

#[test]
fn observer_subjects_do_not_merge() {
    let p = workloads::samples::observer();
    let pre = pta::pre_analysis(&p).unwrap();
    let out = build_heap_abstraction(&p, &pre, &MahjongConfig::default());
    // The two Subjects hold different observer classes, so they are NOT
    // type-consistent and must not merge.
    for class in out.mom.classes() {
        if p.type_name(p.alloc(class[0]).ty()) == "Subject" {
            assert_eq!(class.len(), 1, "differently-observed subjects stay apart");
        }
    }
    // And the merged analysis reports the same client metrics.
    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let merged = AnalysisConfig::new(ObjectSensitive::new(2), out.mom).run(&p).unwrap();
    assert_eq!(
        devirtualization(&p, &base).poly_sites,
        devirtualization(&p, &merged).poly_sites
    );
}

#[test]
fn decorator_chain_reads_resolve() {
    let p = workloads::samples::decorator();
    let r = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let m = ClientMetrics::compute(&p, &r);
    assert_eq!(m.may_fail_casts, 0, "(Buf) data is safe");
    // The read() chain resolves: g.read -> Gzip::read -> Buffered::read
    // -> FileSource::read.
    assert!(m.call_graph_edges >= 3);
}
