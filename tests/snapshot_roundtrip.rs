//! Snapshot round-trip parity, pinned to the golden fingerprints.
//!
//! The serving story only works if a snapshot is a *perfect* stand-in
//! for the analysis that produced it. This suite proves it three ways:
//!
//! 1. **Goldens survive the wire.** Every corpus program ×
//!    {ci, 2cs, 2obj} is analyzed fresh, its canonical fingerprint
//!    checked against the committed goldens (the same table
//!    `crates/pta/tests/set_parity.rs` pins), then pushed through the
//!    full `extract → encode → decode → restore` pipeline — and the
//!    restored result must reproduce the same golden hash bit for bit.
//! 2. **Serving parity.** The query benchmark's order-independent
//!    checksum over a restored result equals the checksum over the
//!    fresh result, for the same seed — warm-started serving answers
//!    exactly like fresh-analysis serving, query by query.
//! 3. **Cross-thread determinism.** The serve checksum over a restored
//!    result is identical at 1 and 4 worker threads.

use bench::serve::{self, ServeOpts};
use pta::{
    AllocSiteAbstraction, AnalysisConfig, AnalysisResult, CallSiteSensitive, ContextInsensitive,
    ObjectSensitive,
};

/// `(program, analysis, golden fingerprint)` — the hash column of the
/// `set_parity.rs` goldens for the programs this suite runs (pmd is
/// left to `set_parity.rs` itself: its 2cs row alone is ~3M points-to
/// entries and adds nothing format-wise).
const GOLDENS: &[(&str, &str, u64)] = &[
    ("figure1", "ci", 0x945cefd21f771be2),
    ("figure1", "2cs", 0x945cefd21f771be2),
    ("figure1", "2obj", 0x945cefd21f771be2),
    ("containers", "ci", 0x4d6a63b8ecd39b17),
    ("containers", "2cs", 0x4d6a63b8ecd39b17),
    ("containers", "2obj", 0x4d6a63b8ecd39b17),
    ("decorator", "ci", 0x3e701153555b28b8),
    ("decorator", "2cs", 0xdb8d32730bb82782),
    ("decorator", "2obj", 0x79afa4e9c9c545b9),
    ("luindex", "ci", 0x59d33beb08e25e4e),
    ("luindex", "2cs", 0xdc155404ef4883a9),
    ("luindex", "2obj", 0x74a049d18e3237ad),
];

fn load(name: &str) -> jir::Program {
    match name {
        "figure1" | "containers" | "decorator" => {
            let path = format!("{}/../../corpus/{name}.jir", env!("CARGO_MANIFEST_DIR"));
            jir::parse(&std::fs::read_to_string(&path).expect("corpus file")).expect("parses")
        }
        other => workloads::dacapo::workload(other, 1).program,
    }
}

fn run(p: &jir::Program, analysis: &str) -> AnalysisResult {
    match analysis {
        "ci" => AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(p)
            .expect("fits budget"),
        "2cs" => AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
            .run(p)
            .expect("fits budget"),
        "2obj" => AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .run(p)
            .expect("fits budget"),
        other => panic!("unknown analysis {other}"),
    }
}

fn snapshot_of(program: &str, analysis: &str, result: &AnalysisResult) -> snapshot::Snapshot {
    snapshot::Snapshot {
        meta: snapshot::Meta {
            program: program.to_owned(),
            scale: 1,
            analysis: analysis.to_owned(),
            heap: "alloc-site".to_owned(),
            threads: 1,
        },
        raw: pta::snapshot::extract(result),
        mom: None,
    }
}

/// Fresh analysis → bytes → restored result, with the golden
/// fingerprint checked on *both* sides of the wire.
#[test]
fn golden_fingerprints_survive_the_byte_roundtrip() {
    for &(name, analysis, golden) in GOLDENS {
        let program = load(name);
        let fresh = run(&program, analysis);
        assert_eq!(
            serve::canonical_fingerprint(&program, &fresh),
            golden,
            "{name}/{analysis}: fresh result drifted from the golden"
        );

        let bytes = snapshot::encode(&snapshot_of(name, analysis, &fresh));
        let decoded = snapshot::decode(&bytes).expect("own bytes decode");
        let restored = pta::snapshot::restore(decoded.raw).expect("own tables restore");
        assert_eq!(
            serve::canonical_fingerprint(&program, &restored),
            golden,
            "{name}/{analysis}: restored result drifted from the golden"
        );
        assert_eq!(
            fresh.total_points_to_size(),
            restored.total_points_to_size(),
            "{name}/{analysis}: total points-to size changed"
        );
        assert_eq!(
            fresh.call_graph_edge_count(),
            restored.call_graph_edge_count(),
            "{name}/{analysis}: call-graph edge count changed"
        );
    }
}

/// The serve benchmark cannot tell a restored result from the fresh
/// one: same seed, same order-independent answer checksum.
#[test]
fn serving_from_a_restored_result_answers_identically() {
    for (name, analysis) in [("decorator", "2obj"), ("luindex", "ci")] {
        let program = load(name);
        let fresh = run(&program, analysis);
        let bytes = snapshot::encode(&snapshot_of(name, analysis, &fresh));
        let restored =
            pta::snapshot::restore(snapshot::decode(&bytes).expect("decodes").raw).expect("restores");

        let opts = ServeOpts { threads: 2, queries: 10_000, batch: 64, seed: 41 };
        let from_fresh = serve::run_bench(&program, &fresh, opts);
        let from_restored = serve::run_bench(&program, &restored, opts);
        assert_eq!(
            from_fresh.checksum, from_restored.checksum,
            "{name}/{analysis}: warm-start serving diverged from fresh serving"
        );
    }
}

/// Thread count is a throughput knob, never a correctness knob: the
/// serve checksum over a restored result is identical at 1 and 4
/// workers.
#[test]
fn restored_serving_is_thread_count_deterministic() {
    let program = load("luindex");
    let fresh = run(&program, "2obj");
    let bytes = snapshot::encode(&snapshot_of("luindex", "2obj", &fresh));
    let restored =
        pta::snapshot::restore(snapshot::decode(&bytes).expect("decodes").raw).expect("restores");

    let base = ServeOpts { threads: 1, queries: 20_000, batch: 128, seed: 99 };
    let one = serve::run_bench(&program, &restored, base);
    let four = serve::run_bench(&program, &restored, ServeOpts { threads: 4, ..base });
    assert_eq!(one.checksum, four.checksum);
    for ((n1, c1), (n2, c2)) in one.classes.iter().zip(&four.classes) {
        assert_eq!(n1, n2);
        assert_eq!(c1.count, c2.count, "class {n1} count differs across thread counts");
    }
}
