//! Propagation-volume regression smoke test.
//!
//! Runs a small fixed workload (deterministic generator, fixed scale,
//! fixed configuration) and asserts the solver's `worklist_pops` stays
//! within 10% of a checked-in bound. The bound is the value measured
//! when the online-cycle-collapse solver landed, times 1.10 — a real
//! regression (losing collapse, breaking wave ordering, reverting to
//! full-set propagation) blows well past it, while normal drift from
//! heuristic tweaks fits inside.
//!
//! Update `WORKLIST_POPS_BOUND` deliberately, with the measured value
//! and the reason, whenever the solver's propagation strategy changes.
//!
//! The Mahjong guard works the same way: the canonical-signature merge
//! path must run **zero** Hopcroft–Karp equivalence checks (reverting
//! to pairwise checking flips `hk_runs`/`equivalence_checks` nonzero
//! immediately), and the amount of automaton work — `dfa_built`, one
//! canonicalization per candidate — is pinned to a measured-at-commit
//! bound the same way `worklist_pops` is. Wall-clock itself is tracked
//! by the committed `BENCH_baseline_pr4.json` /
//! `BENCH_mahjong_baseline_pr4.json` pair, which `scripts/bench_table.py`
//! renders; counters, not seconds, are what CI can assert on.

use std::time::Duration;

use mahjong::MahjongConfig;
use pta::{AllocSiteAbstraction, AnalysisConfig, Budget, CallSiteSensitive};

/// 1.10 × the `worklist_pops` measured for this exact configuration
/// (luindex, scale 2, 2cs, alloc-site heap) on the cycle-collapsing
/// solver with sink suppression: 4,256 measured → 4,681 bound.
const WORKLIST_POPS_BOUND: u64 = 4_681;

#[test]
fn worklist_pops_does_not_regress() {
    let w = workloads::dacapo::workload("luindex", 2);
    let result = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .budget(Budget::seconds(120))
        .run(&w.program)
        .expect("luindex@2 under 2cs fits a 120s budget");
    let pops = result.stats().worklist_pops;
    assert!(pops > 0, "solver did no work");
    assert!(
        pops <= WORKLIST_POPS_BOUND,
        "worklist_pops regressed: {pops} > bound {WORKLIST_POPS_BOUND} \
         (bound = measured-at-commit × 1.10; see module docs)"
    );
}

/// 1.10 × the `dfa_built` measured for luindex@2 with the default
/// Mahjong configuration when the canonical-signature path landed:
/// 288 measured → 317 bound. One DFA is built (and canonicalized once)
/// per merge candidate, so this bounds the whole automaton phase's
/// work; a regression that re-runs subset construction per pair or
/// stops skipping singleton type groups blows past it.
const MAHJONG_DFA_BUILT_BOUND: usize = 317;

/// The Mahjong merge phase on the fixed workload: signatures do all the
/// equivalence work (no Hopcroft–Karp on the fast path) and the volume
/// of automaton construction stays within the checked-in bound.
#[test]
fn mahjong_fast_path_stays_hk_free() {
    let w = workloads::dacapo::workload("luindex", 2);
    let prepared_pre = pta::pre_analysis(&w.program).expect("pre-analysis fits");
    let out = mahjong::build_heap_abstraction(&w.program, &prepared_pre, &MahjongConfig::default());
    let stats = &out.stats;
    assert_eq!(
        stats.hk_runs, 0,
        "fast path ran Hopcroft–Karp {} times; signatures should decide every merge",
        stats.hk_runs
    );
    assert_eq!(stats.equivalence_checks, 0, "legacy alias must agree with hk_runs");
    assert!(stats.dfa_built > 0, "merge phase built no automata");
    assert!(
        stats.sig_buckets <= stats.dfa_built,
        "more buckets ({}) than automata ({})",
        stats.sig_buckets,
        stats.dfa_built
    );
    assert!(
        stats.merged_objects < stats.objects,
        "luindex@2 has known equivalent objects; nothing merged"
    );
    assert!(
        stats.dfa_built <= MAHJONG_DFA_BUILT_BOUND,
        "dfa_built regressed: {} > bound {MAHJONG_DFA_BUILT_BOUND} \
         (bound = measured-at-commit × 1.10; see module docs)",
        stats.dfa_built
    );
}

/// The **logical** (per-row, pre-deduplication) points-to footprint of
/// the fixed workload, measured on the solver just before hash-consing
/// landed: 16,643 words. The interner's physical peak must undercut it
/// — rows with identical contents share one allocation — and the
/// dedup counter must show the sharing actually happened. Update the
/// baseline deliberately, with the measured value and the reason,
/// whenever the workload or the set representation changes.
const PRE_INTERN_PEAK_WORDS: u64 = 16_643;

#[test]
fn hash_consing_reduces_physical_pts_footprint() {
    let w = workloads::dacapo::workload("luindex", 2);
    let result = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .budget(Budget::seconds(120))
        .run(&w.program)
        .expect("luindex@2 under 2cs fits a 120s budget");
    let stats = result.stats();
    assert!(
        stats.pts_dedup_hits > 0,
        "no seal ever found its content already interned; hash-consing is inert"
    );
    assert!(stats.pts_interned > 0, "the interner admitted nothing");
    assert!(
        stats.pts_peak_words < PRE_INTERN_PEAK_WORDS,
        "physical peak {} >= pre-intern logical baseline {PRE_INTERN_PEAK_WORDS}; \
         interned rows are not sharing allocations",
        stats.pts_peak_words
    );
}

/// Catastrophe ceiling on the fixed workload's whole-run wall time (an
/// unoptimized debug build of luindex@2/2cs runs in single-digit
/// seconds; the ceiling only trips on order-of-magnitude regressions —
/// counters above, not seconds, are the precise guards).
const MAIN_WALL_CEILING: Duration = Duration::from_secs(45);

/// Wall-time sanity at 1 and 4 threads, plus the scaling guard: t4 must
/// not be meaningfully *slower* than t1. (This container is single-CPU,
/// so parallel runs cannot win wall-clock; what the guard catches is
/// coordination overhead — the per-level spawn/barrier cost that once
/// made threads=2 slower than threads=1 before small levels were gated
/// sequential by estimated work.) Medians of three runs absorb the
/// box's timing noise; the slack term absorbs the rest.
#[test]
fn main_analysis_wall_time_within_bounds_and_scales() {
    let w = workloads::dacapo::workload("luindex", 2);
    let median = |threads: usize| -> Duration {
        let mut times: Vec<Duration> = (0..3)
            .map(|_| {
                AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
                    .threads(threads)
                    .budget(Budget::seconds(120))
                    .run(&w.program)
                    .expect("luindex@2 under 2cs fits a 120s budget")
                    .stats()
                    .elapsed
            })
            .collect();
        times.sort();
        times[1]
    };
    let t1 = median(1);
    let t4 = median(4);
    assert!(
        t1 <= MAIN_WALL_CEILING,
        "threads=1 wall time {t1:?} blew past the {MAIN_WALL_CEILING:?} ceiling"
    );
    assert!(
        t4 <= MAIN_WALL_CEILING,
        "threads=4 wall time {t4:?} blew past the {MAIN_WALL_CEILING:?} ceiling"
    );
    assert!(
        t4.as_secs_f64() <= t1.as_secs_f64() * 1.5 + 0.5,
        "threads=4 ({t4:?}) is meaningfully slower than threads=1 ({t1:?}); \
         parallel coordination overhead regressed"
    );
}

/// The fixed workload contains copy cycles, so the collapse machinery
/// must actually fire — guards against silently disabling it.
#[test]
fn cycle_collapse_is_active() {
    let w = workloads::dacapo::workload("luindex", 2);
    let result = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .budget(Budget::seconds(120))
        .run(&w.program)
        .expect("luindex@2 under 2cs fits a 120s budget");
    let stats = result.stats();
    assert!(
        stats.scc_collapsed_ptrs > 0,
        "no pointers collapsed on a workload with known copy cycles"
    );
    assert!(stats.wave_rounds > 0);
}
