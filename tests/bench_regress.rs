//! Propagation-volume regression smoke test.
//!
//! Runs a small fixed workload (deterministic generator, fixed scale,
//! fixed configuration) and asserts the solver's `worklist_pops` stays
//! within 10% of a checked-in bound. The bound is the value measured
//! when the online-cycle-collapse solver landed, times 1.10 — a real
//! regression (losing collapse, breaking wave ordering, reverting to
//! full-set propagation) blows well past it, while normal drift from
//! heuristic tweaks fits inside.
//!
//! Update `WORKLIST_POPS_BOUND` deliberately, with the measured value
//! and the reason, whenever the solver's propagation strategy changes.

use pta::{AllocSiteAbstraction, AnalysisConfig, Budget, CallSiteSensitive};

/// 1.10 × the `worklist_pops` measured for this exact configuration
/// (luindex, scale 2, 2cs, alloc-site heap) on the cycle-collapsing
/// solver with sink suppression: 4,256 measured → 4,681 bound.
const WORKLIST_POPS_BOUND: u64 = 4_681;

#[test]
fn worklist_pops_does_not_regress() {
    let w = workloads::dacapo::workload("luindex", 2);
    let result = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .budget(Budget::seconds(120))
        .run(&w.program)
        .expect("luindex@2 under 2cs fits a 120s budget");
    let pops = result.stats().worklist_pops;
    assert!(pops > 0, "solver did no work");
    assert!(
        pops <= WORKLIST_POPS_BOUND,
        "worklist_pops regressed: {pops} > bound {WORKLIST_POPS_BOUND} \
         (bound = measured-at-commit × 1.10; see module docs)"
    );
}

/// The fixed workload contains copy cycles, so the collapse machinery
/// must actually fire — guards against silently disabling it.
#[test]
fn cycle_collapse_is_active() {
    let w = workloads::dacapo::workload("luindex", 2);
    let result = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .budget(Budget::seconds(120))
        .run(&w.program)
        .expect("luindex@2 under 2cs fits a 120s budget");
    let stats = result.stats();
    assert!(
        stats.scc_collapsed_ptrs > 0,
        "no pointers collapsed on a workload with known copy cycles"
    );
    assert!(stats.wave_rounds > 0);
}
