//! Precision-parity integration tests: M-kA must match kA on the three
//! type-dependent client metrics across workloads and analyses, while
//! the naive allocation-type abstraction must be visibly less precise —
//! the paper's central claim (Sections 3.6.2 and 6.2.2).

use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{
    AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, Budget, CallSiteSensitive,
    HeapAbstraction, MergedObjectMap, ObjectSensitive, TypeSensitive, Unscalable,
};

fn pipeline(name: &str) -> (jir::Program, MergedObjectMap) {
    let w = workloads::dacapo::workload(name, 1);
    let pre = pta::pre_analysis(&w.program).unwrap();
    let out = build_heap_abstraction(&w.program, &pre, &MahjongConfig::default());
    (w.program, out.mom)
}

fn metrics<H: HeapAbstraction>(
    p: &jir::Program,
    s: Sens,
    heap: H,
) -> Result<ClientMetrics, Unscalable> {
    let budget = Budget::seconds(120);
    let r = match s {
        Sens::Cs(k) => AnalysisConfig::new(CallSiteSensitive::new(k), heap)
            .budget(budget)
            .run(p)?,
        Sens::Obj(k) => AnalysisConfig::new(ObjectSensitive::new(k), heap)
            .budget(budget)
            .run(p)?,
        Sens::Type(k) => AnalysisConfig::new(TypeSensitive::new(k), heap)
            .budget(budget)
            .run(p)?,
    };
    Ok(ClientMetrics::compute(p, &r))
}

#[derive(Clone, Copy)]
enum Sens {
    Cs(usize),
    Obj(usize),
    Type(usize),
}

/// M-kA matches kA exactly on all three client metrics, for all five
/// analyses, on several programs.
#[test]
fn mahjong_preserves_client_precision() {
    for name in ["luindex", "pmd", "checkstyle"] {
        let (p, mom) = pipeline(name);
        for (label, s) in [
            ("2cs", Sens::Cs(2)),
            ("2obj", Sens::Obj(2)),
            ("3obj", Sens::Obj(3)),
            ("2type", Sens::Type(2)),
            ("3type", Sens::Type(3)),
        ] {
            let base = metrics(&p, s, AllocSiteAbstraction).unwrap();
            let with_m = metrics(&p, s, mom.clone()).unwrap();
            assert_eq!(
                base.call_graph_edges, with_m.call_graph_edges,
                "{name}/{label}: call-graph edges"
            );
            assert_eq!(
                base.poly_call_sites, with_m.poly_call_sites,
                "{name}/{label}: poly call sites"
            );
            assert_eq!(
                base.may_fail_casts, with_m.may_fail_casts,
                "{name}/{label}: may-fail casts"
            );
        }
    }
}

/// The allocation-type abstraction is strictly less precise than both
/// the allocation-site abstraction and Mahjong on the same analysis.
#[test]
fn alloc_type_is_less_precise() {
    let (p, mom) = pipeline("pmd");
    let base = metrics(&p, Sens::Obj(2), AllocSiteAbstraction).unwrap();
    let t = metrics(&p, Sens::Obj(2), AllocTypeAbstraction::new(&p)).unwrap();
    let m = metrics(&p, Sens::Obj(2), mom).unwrap();
    assert!(
        t.may_fail_casts > base.may_fail_casts,
        "T-2obj flags more casts ({} vs {})",
        t.may_fail_casts,
        base.may_fail_casts
    );
    assert_eq!(m.may_fail_casts, base.may_fail_casts);
    assert!(t.call_graph_edges >= base.call_graph_edges);
}

/// Soundness ordering: merging objects can only add behaviours, so the
/// M-kA call graph is a superset of the kA call graph collapsed
/// context-insensitively... and since M-kA also loses no edges on these
/// workloads, the sets are equal. Check the superset direction
/// explicitly (it is the soundness half of Section 3.6.2).
#[test]
fn mahjong_call_graph_is_sound_superset() {
    let (p, mom) = pipeline("antlr");
    let budget = Budget::seconds(120);
    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .budget(budget)
        .run(&p)
        .unwrap();
    let with_m = AnalysisConfig::new(ObjectSensitive::new(2), mom)
        .budget(budget)
        .run(&p)
        .unwrap();
    let base_edges: std::collections::HashSet<_> = base.call_graph_edges().collect();
    let m_edges: std::collections::HashSet<_> = with_m.call_graph_edges().collect();
    assert!(
        m_edges.is_superset(&base_edges),
        "every baseline edge survives merging"
    );
}

/// The precision lattice across analyses holds under Mahjong exactly as
/// it does under the allocation-site abstraction: kobj ≤ kcs ≤ ci in
/// may-fail casts on these workloads.
#[test]
fn precision_ordering_is_preserved() {
    let (p, mom) = pipeline("checkstyle");
    let cs = metrics(&p, Sens::Cs(2), mom.clone()).unwrap();
    let obj = metrics(&p, Sens::Obj(2), mom.clone()).unwrap();
    let ty = metrics(&p, Sens::Type(2), mom).unwrap();
    assert!(obj.may_fail_casts <= cs.may_fail_casts);
    assert!(obj.may_fail_casts <= ty.may_fail_casts);
}

/// Object-count reduction: Mahjong shrinks the reachable heap by a
/// large factor on every workload (the paper reports a 62% average —
/// Figure 8).
#[test]
fn object_reduction_is_substantial() {
    for name in workloads::dacapo::PROGRAMS {
        let w = workloads::dacapo::workload(name, 1);
        let pre = pta::pre_analysis(&w.program).unwrap();
        let out = build_heap_abstraction(&w.program, &pre, &MahjongConfig::default());
        let reduction = 1.0 - out.stats.merged_objects as f64 / out.stats.objects as f64;
        assert!(
            reduction > 0.35,
            "{name}: only {:.0}% reduction",
            reduction * 100.0
        );
        assert!(out.stats.merged_objects > 0);
    }
}

/// The parallel merge driver computes exactly the same abstraction as
/// the sequential one.
#[test]
fn parallel_merge_matches_sequential() {
    for name in ["pmd", "eclipse"] {
        let w = workloads::dacapo::workload(name, 1);
        let pre = pta::pre_analysis(&w.program).unwrap();
        let seq = build_heap_abstraction(&w.program, &pre, &MahjongConfig::default());
        let par = build_heap_abstraction(
            &w.program,
            &pre,
            &MahjongConfig {
                threads: 8,
                ..MahjongConfig::default()
            },
        );
        assert_eq!(seq.mom, par.mom, "{name}: same merged-object map");
    }
}
