//! End-to-end pipeline tests over all 12 benchmark programs: generate,
//! pre-analyze, merge, re-analyze — checking structural invariants of
//! every stage.

use mahjong::{build_with_fpg, MahjongConfig};
use pta::{AnalysisConfig, Budget, HeapAbstraction, ObjectSensitive};

#[test]
fn full_pipeline_on_all_programs() {
    for name in workloads::dacapo::PROGRAMS {
        let w = workloads::dacapo::workload(name, 1);
        let p = &w.program;
        let pre = pta::pre_analysis(p).unwrap_or_else(|e| panic!("{name}: ci {e}"));

        // The context-insensitive pre-analysis creates exactly one
        // abstract object per reachable allocation site.
        assert_eq!(
            pre.object_count(),
            pre.objects()
                .map(|o| pre.obj_alloc(o))
                .collect::<std::collections::HashSet<_>>()
                .len(),
            "{name}: ci objects are per-site"
        );

        let (fpg, out) = build_with_fpg(p, &pre, &MahjongConfig::default());

        // Every reachable site is covered by the map; representatives
        // are fixed points; merged classes are type-homogeneous.
        assert_eq!(out.mom.len(), p.alloc_count());
        for alloc in fpg.present_allocs() {
            let rep = out.mom.repr(alloc);
            assert_eq!(out.mom.repr(rep), rep, "{name}: idempotent");
            assert_eq!(
                p.alloc(alloc).ty(),
                p.alloc(rep).ty(),
                "{name}: same-type merging only"
            );
        }

        // Unreachable sites stay singletons.
        for i in 0..p.alloc_count() {
            let a = jir::AllocId::from_usize(i);
            if !fpg.is_present(a) {
                assert_eq!(out.mom.repr(a), a, "{name}: unreachable sites untouched");
            }
        }

        // The merged analysis runs and produces no more objects than
        // classes (plus heap-context variation).
        let r = AnalysisConfig::new(ObjectSensitive::new(2), out.mom.clone())
            .budget(Budget::seconds(120))
            .run(p)
            .unwrap_or_else(|e| panic!("{name}: M-2obj {e}"));
        assert!(r.reachable_method_count() > 0);
        // Merged objects are modeled context-insensitively, so each
        // merged class contributes exactly one abstract object.
        let merged_reprs: std::collections::HashSet<_> = fpg
            .present_allocs()
            .filter(|&a| out.mom.is_merged(a))
            .map(|a| out.mom.repr(a))
            .collect();
        for obj in r.objects() {
            let alloc = r.obj_alloc(obj);
            if merged_reprs.contains(&alloc) {
                assert_eq!(
                    r.contexts().elems(r.obj_heap_context(obj)).len(),
                    0,
                    "{name}: merged objects are context-insensitive"
                );
            }
        }
    }
}

#[test]
fn fpg_reflects_field_points_to() {
    let w = workloads::dacapo::workload("luindex", 1);
    let p = &w.program;
    let pre = pta::pre_analysis(p).unwrap();
    let (fpg, _) = build_with_fpg(p, &pre, &MahjongConfig::default());

    // Every FPG edge between allocation nodes corresponds to a
    // pre-analysis field points-to fact, and vice versa.
    let mut fact_count = 0usize;
    for (obj, field, pts) in pre.field_pointers() {
        let from = pre.obj_alloc(obj);
        for target in pts {
            let to = pre.obj_alloc(target);
            fact_count += 1;
            assert!(
                fpg.successors(mahjong::FpgNode::Alloc(from), field)
                    .contains(&mahjong::FpgNode::Alloc(to)),
                "missing FPG edge {from:?}.{field:?} -> {to:?}"
            );
        }
    }
    assert!(fact_count > 0, "the workload has field facts");
}

#[test]
fn unscalable_budget_is_reported() {
    // With a zero-second budget, any analysis on a non-trivial program
    // reports Unscalable instead of hanging or panicking.
    let w = workloads::dacapo::workload("eclipse", 1);
    let err = AnalysisConfig::new(ObjectSensitive::new(3), pta::AllocSiteAbstraction)
        .budget(Budget {
            time_limit: std::time::Duration::from_millis(0),
        })
        .run(&w.program)
        .unwrap_err();
    assert!(err.to_string().contains("exceeded its budget"));
}

#[test]
fn generated_programs_roundtrip_through_parser() {
    // The pretty-printed form of a generated program re-parses into an
    // equivalent program (same entity counts, same analysis results).
    let w = workloads::dacapo::workload("lusearch", 1);
    let printed = w.program.to_string();
    let reparsed = jir::parse(&printed).expect("printed program re-parses");
    assert_eq!(w.program.class_count(), reparsed.class_count());
    assert_eq!(w.program.alloc_count(), reparsed.alloc_count());
    assert_eq!(w.program.call_site_count(), reparsed.call_site_count());
    assert_eq!(w.program.cast_count(), reparsed.cast_count());

    let r1 = pta::pre_analysis(&w.program).unwrap();
    let r2 = pta::pre_analysis(&reparsed).unwrap();
    assert_eq!(r1.object_count(), r2.object_count());
    assert_eq!(r1.call_graph_edge_count(), r2.call_graph_edge_count());
}
